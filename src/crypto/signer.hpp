// Oracle-enforced unforgeable signatures (substitution S8 in
// docs/ARCHITECTURE.md).
//
// The paper assumes signatures whose forgery is computationally hard
// (footnote 1). Offline we have no PKI, so we *enforce* unforgeability
// structurally: a SignatureAuthority holds every process's secret key and
// never reveals it; sign(pid, m) is only honored for the process the
// calling thread is bound to (same thread-identity mechanism the register
// ports use). A Byzantine process can therefore sign anything *as itself* —
// "you can lie" — but cannot produce another process's signature. Tags are
// real HMAC-SHA256 computations so the baseline pays realistic hashing
// cost; kSlowPk mode multiplies the work to model public-key signatures
// (calibrated in bench T11).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"
#include "runtime/process.hpp"

namespace swsig::crypto {

struct Signature {
  runtime::ProcessId signer = runtime::kNoProcess;
  Digest tag{};

  friend auto operator<=>(const Signature&, const Signature&) = default;
};

// Byte encoding of values for signing. Integral types use 8-byte
// little-endian; strings sign their bytes. Extend by overloading.
template <typename V>
std::string encode_value(const V& v) {
  if constexpr (std::is_integral_v<V>) {
    std::string out(8, '\0');
    auto u = static_cast<std::uint64_t>(v);
    for (int i = 0; i < 8; ++i)
      out[static_cast<std::size_t>(i)] = static_cast<char>(u >> (8 * i));
    return out;
  } else {
    return std::string(v);
  }
}

class SignatureAuthority {
 public:
  enum class Mode {
    kHmac,    // one HMAC per sign/verify
    kSlowPk,  // pk_iterations chained HMACs (public-key cost model)
  };

  struct Options {
    int n = 4;                 // processes p1..pn
    std::uint64_t seed = 1;    // key material derivation
    Mode mode = Mode::kHmac;
    int pk_iterations = 64;    // extra work factor in kSlowPk mode
  };

  explicit SignatureAuthority(Options options);

  // Signs `message` as process `signer`. Throws ForgeryAttempt if the
  // calling thread is not bound as `signer` — this is the unforgeability
  // guarantee.
  Signature sign(runtime::ProcessId signer, std::string_view message) const;

  // Anyone may verify anyone's signature.
  bool verify(std::string_view message, const Signature& sig) const;

  int n() const { return options_.n; }

 private:
  Digest tag(runtime::ProcessId signer, std::string_view message) const;

  Options options_;
  std::vector<std::string> keys_;  // index by pid; [0] unused
};

class ForgeryAttempt : public std::logic_error {
 public:
  explicit ForgeryAttempt(const std::string& what) : std::logic_error(what) {}
};

}  // namespace swsig::crypto
