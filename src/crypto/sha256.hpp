// SHA-256 (FIPS 180-4), implemented from scratch — the offline environment
// has no crypto library, and the signature baseline (S8/S9 in docs/ARCHITECTURE.md)
// needs realistic hashing cost. Verified against FIPS/NIST test vectors in
// tests/crypto_test.cpp.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace swsig::crypto {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(const void* data, std::size_t len);
  void update(std::string_view s) { update(s.data(), s.size()); }
  // Finalizes and returns the digest; the object must be reset() before
  // reuse.
  Digest finish();

  // One-shot convenience.
  static Digest hash(std::string_view data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bits_ = 0;
};

// Lowercase hex rendering of a digest (for tests and logs).
std::string to_hex(const Digest& digest);

}  // namespace swsig::crypto
