// Canonical signing-message encoding: length-prefixed, type-tagged fields.
//
// The seed-era encoder concatenated raw bytes: integral values became 8
// little-endian bytes, strings passed through verbatim, and multi-field
// messages were built by bare concatenation. That framing is ambiguous in
// two ways, and each ambiguity is a signature-forgery primitive (a
// signature binds a byte string, so two statements with one encoding share
// one signature):
//
//  1. Cross-type: the 8-byte string "\x2a\0\0\0\0\0\0\0" and the uint64
//     value 42 encoded to identical bytes, so Sign(42) also "signed" the
//     string, and vice versa.
//  2. Cross-field: concatenating variable-length fields lets bytes migrate
//     between fields — encode("ab") + encode("c") == encode("a") +
//     encode("bc"), so a statement about ("ab", "c") verified as one about
//     ("a", "bc").
//
// The fix is classic injective framing: every field is emitted as
//
//     [1-byte type tag] [8-byte LE payload length] [payload bytes]
//
// and multi-field messages start with a domain-separation field naming the
// protocol context. Decoding is never needed (messages are only compared
// and MACed); the tags exist so no two distinct field sequences can share
// an encoding: tags separate types, the length prefix pins each field's
// extent, and the domain field separates protocols signing with the same
// keys. Regression-tested against the old collisions in tests/crypto_test.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>

namespace swsig::crypto {

namespace detail {

inline constexpr char kTagUint = 'u';    // integral, 8-byte LE payload
inline constexpr char kTagBytes = 's';   // string / raw bytes
inline constexpr char kTagDomain = 'd';  // domain-separation label

inline void append_le64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

inline void append_framed(std::string& out, char tag, std::string_view payload) {
  out.push_back(tag);
  append_le64(out, payload.size());
  out.append(payload);
}

}  // namespace detail

// Appends one framed field to `out`. Integral types frame an 8-byte LE
// payload under the 'u' tag; string-likes frame their bytes under 's'.
// Extend to new value types by overloading encode_field.
template <typename V>
void encode_field(std::string& out, const V& v) {
  if constexpr (std::is_integral_v<V>) {
    std::string payload;
    payload.reserve(8);
    detail::append_le64(payload, static_cast<std::uint64_t>(v));
    detail::append_framed(out, detail::kTagUint, payload);
  } else {
    detail::append_framed(out, detail::kTagBytes, std::string_view(v));
  }
}

// Byte encoding of a single value for signing: one framed field. The name
// predates the framing fix; every signing site routes through this (or
// encode_message below), so the framing applies everywhere uniformly.
template <typename V>
std::string encode_value(const V& v) {
  std::string out;
  encode_field(out, v);
  return out;
}

// Framed multi-field signing message with a leading domain tag:
//
//   encode_message("swsig.rb.slot", sender, seq, value)
//
// The domain field makes statements from different protocols (or different
// register families sharing one SignatureAuthority) non-interchangeable
// even when their payload fields coincide.
template <typename... Fields>
std::string encode_message(std::string_view domain, const Fields&... fields) {
  std::string out;
  detail::append_framed(out, detail::kTagDomain, domain);
  (encode_field(out, fields), ...);
  return out;
}

}  // namespace swsig::crypto
