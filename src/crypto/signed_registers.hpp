// Signature-based baseline registers (substitution S9 in
// docs/ARCHITECTURE.md) — the prior-work comparators, NOT a paper
// construction: the paper's point is that core/ needs none of this.
//
// These provide the same abstract interfaces as the paper's three register
// types but use (simulated) unforgeable signatures, the way prior work
// ([5] Cohen–Keidar, [2] Aguilera et al.) does. They are the comparators
// for benchmarks T1–T3/T6: what does removing signatures cost?
//
// Fault-tolerance differences worth noting (and measured):
//  * SignedVerifiable / SignedAuthenticated tolerate ANY f < n: one honest
//    relayed copy of a signed value suffices, since the signature cannot be
//    forged. No quorum work — Verify is O(1) when the writer is honest and
//    O(n) worst case.
//  * SignedSticky still needs n > 3f echo quorums: signatures authenticate
//    *who* wrote a value but cannot stop the owner from signing TWO values —
//    exactly the paper's §1 observation that signatures alone do not give
//    uniqueness/non-equivocation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "core/version_gate.hpp"
#include "crypto/signer.hpp"
#include "registers/space.hpp"
#include "runtime/process.hpp"

namespace swsig::crypto {

// ----------------------------------------------------------------------
// Signed verifiable register: Write/Read/Sign/Verify via signatures.
// ----------------------------------------------------------------------
template <core::RegisterValue V>
class SignedVerifiableRegister {
 public:
  using Value = V;
  using SignedSet = std::map<V, Signature>;

  struct Config {
    int n = 4;
    int f = 1;  // informational; any f < n works for this register
    V v0 = V{};
  };

  SignedVerifiableRegister(registers::Space& space,
                           const SignatureAuthority& authority, Config config)
      : authority_(&authority), cfg_(std::move(config)) {
    last_ = &space.make_swmr<V>(1, cfg_.v0, "sv.last");
    signed_ = &space.make_swmr<SignedSet>(1, {}, "sv.signed");
    relay_.resize(static_cast<std::size_t>(cfg_.n) + 1, nullptr);
    for (int k = 2; k <= cfg_.n; ++k)
      relay_[static_cast<std::size_t>(k)] = &space.make_swmr<SignedSet>(
          k, {}, "sv.relay" + std::to_string(k));
  }

  const Config& config() const { return cfg_; }

  void write(const V& v) {
    last_->write(v);
    written_.insert(v);
  }

  core::SignResult sign(const V& v) {
    if (!written_.contains(v)) return core::SignResult::kFail;
    const Signature sig = authority_->sign(1, encode_value(v));
    signed_->update([&](SignedSet& s) { s[v] = sig; });
    return core::SignResult::kSuccess;
  }

  V read() { return last_->read(); }

  bool verify(const V& v) {
    const int k = runtime::ThisProcess::id();
    const std::string msg = encode_value(v);
    // 1. Writer's own signed set, then 2. any reader's relay set (a correct
    // reader that saw the signed value re-published it, defeating later
    // denial by the writer).
    std::optional<Signature> found = check(signed_->read(), v, msg);
    for (int j = 2; !found && j <= cfg_.n; ++j) {
      if (j == k) continue;
      found = check(relay_[static_cast<std::size_t>(j)]->read(), v, msg);
    }
    if (!found) return false;
    adopt(k, v, *found);
    return true;
  }

  // No background helping needed: signatures replace witnesses.
  bool help_round() { return false; }

 private:
  std::optional<Signature> check(const SignedSet& s, const V& v,
                                 const std::string& msg) const {
    const auto it = s.find(v);
    if (it != s.end() && it->second.signer == 1 &&
        authority_->verify_cached(msg, it->second))
      return it->second;
    return std::nullopt;
  }

  void adopt(int k, const V& v, const Signature& sig) {
    if (k < 2 || k > cfg_.n) return;
    // Republishing keeps the signed value alive even if the (Byzantine)
    // writer later erases it: the relay property.
    relay_[static_cast<std::size_t>(k)]->update(
        [&](SignedSet& s) { s[v] = sig; });
  }

  const SignatureAuthority* authority_;
  Config cfg_;
  registers::Swmr<V>* last_ = nullptr;
  registers::Swmr<SignedSet>* signed_ = nullptr;
  std::vector<registers::Swmr<SignedSet>*> relay_;
  std::set<V> written_;  // writer-local r*
};

// ----------------------------------------------------------------------
// Signed authenticated register: every Write carries its signature.
// ----------------------------------------------------------------------
template <core::RegisterValue V>
class SignedAuthenticatedRegister {
 public:
  using Value = V;
  struct Entry {
    core::SeqNo seq = 0;
    V value = V{};
    Signature sig;
    friend auto operator<=>(const Entry&, const Entry&) = default;
  };
  using EntrySet = std::set<Entry>;
  using SignedSet = std::map<V, Signature>;

  struct Config {
    int n = 4;
    int f = 1;
    V v0 = V{};
  };

  SignedAuthenticatedRegister(registers::Space& space,
                              const SignatureAuthority& authority,
                              Config config)
      : authority_(&authority), cfg_(std::move(config)) {
    store_ = &space.make_swmr<EntrySet>(1, {}, "sa.store");
    relay_.resize(static_cast<std::size_t>(cfg_.n) + 1, nullptr);
    for (int k = 2; k <= cfg_.n; ++k)
      relay_[static_cast<std::size_t>(k)] = &space.make_swmr<SignedSet>(
          k, {}, "sa.relay" + std::to_string(k));
  }

  const Config& config() const { return cfg_; }

  void write(const V& v) {
    ++seq_;
    const Signature sig = authority_->sign(1, encode_value(v));
    store_->update([&](EntrySet& s) { s.insert({seq_, v, sig}); });
  }

  V read() {
    const int k = runtime::ThisProcess::id();
    const EntrySet s = store_->read();
    // Highest-timestamp entry with a VALID signature wins; invalid entries
    // (a Byzantine writer can insert garbage tags) are skipped.
    for (auto it = s.rbegin(); it != s.rend(); ++it) {
      if (authority_->verify_cached(encode_value(it->value), it->sig)) {
        adopt(k, it->value, it->sig);
        return it->value;
      }
    }
    return cfg_.v0;
  }

  bool verify(const V& v) {
    if (v == cfg_.v0) return true;  // v0 deemed signed (Definition 15)
    const int k = runtime::ThisProcess::id();
    const std::string msg = encode_value(v);
    const EntrySet s = store_->read();
    for (const Entry& e : s) {
      if (e.value == v && authority_->verify_cached(msg, e.sig)) {
        adopt(k, v, e.sig);
        return true;
      }
    }
    for (int j = 2; j <= cfg_.n; ++j) {
      if (j == k) continue;
      const SignedSet r = relay_[static_cast<std::size_t>(j)]->read();
      if (auto it = r.find(v);
          it != r.end() && authority_->verify_cached(msg, it->second)) {
        adopt(k, v, it->second);
        return true;
      }
    }
    return false;
  }

  bool help_round() { return false; }

 private:
  void adopt(int k, const V& v, const Signature& sig) {
    if (k < 2 || k > cfg_.n) return;
    relay_[static_cast<std::size_t>(k)]->update(
        [&](SignedSet& s) { s[v] = sig; });
  }

  const SignatureAuthority* authority_;
  Config cfg_;
  registers::Swmr<EntrySet>* store_ = nullptr;
  std::vector<registers::Swmr<SignedSet>*> relay_;
  core::SeqNo seq_ = 0;
};

// ----------------------------------------------------------------------
// Signed sticky register: echo quorums are STILL required (n > 3f) because
// signatures cannot prevent the owner from signing two different values.
// ----------------------------------------------------------------------
template <core::RegisterValue V>
class SignedStickyRegister {
 public:
  using Value = V;
  struct SignedVal {
    V value = V{};
    Signature sig;
    friend auto operator<=>(const SignedVal&, const SignedVal&) = default;
  };
  using Slot = std::optional<SignedVal>;

  struct Config {
    int n = 4;
    int f = 1;  // requires n > 3f, like the signature-free version
    bool allow_suboptimal = false;
  };

  SignedStickyRegister(registers::Space& space,
                       const SignatureAuthority& authority, Config config)
      : space_(&space), authority_(&authority), cfg_(std::move(config)),
        epoch_gate_(cfg_.n) {
    core::check_resilience(cfg_.n, cfg_.f, cfg_.allow_suboptimal);
    publish_ = &space.make_swmr<Slot>(1, std::nullopt, "ss.pub");
    echo_.resize(static_cast<std::size_t>(cfg_.n) + 1, nullptr);
    for (int i = 1; i <= cfg_.n; ++i)
      echo_[static_cast<std::size_t>(i)] = &space.make_swmr<Slot>(
          i, std::nullopt, "ss.echo" + std::to_string(i));
  }

  const Config& config() const { return cfg_; }

  void write(const V& v) {
    if (publish_->read().has_value()) return;  // one-shot
    const Signature sig = authority_->sign(1, encode_value(v));
    publish_->write(Slot{SignedVal{v, sig}});
    // Await n−f echoes of v before returning (same reason as Algorithm 3).
    for (;;) {
      if (count_echoes(v) >= cfg_.n - cfg_.f) return;
      std::this_thread::yield();
    }
  }

  std::optional<V> read() {
    for (;;) {
      // Each spin batch-verifies the round's echoes: matching echoes sign
      // the same message, so verify_all computes one digest for the whole
      // quorum and cached signatures skip the MAC entirely.
      std::vector<Slot> echoes;
      std::vector<std::string> msgs;
      echoes.reserve(static_cast<std::size_t>(cfg_.n));
      msgs.reserve(static_cast<std::size_t>(cfg_.n));
      for (int i = 1; i <= cfg_.n; ++i) {
        echoes.push_back(echo_[static_cast<std::size_t>(i)]->read());
        const Slot& e = echoes.back();
        msgs.push_back(e.has_value() ? encode_value(e->value)
                                     : std::string());
      }
      std::vector<SignatureAuthority::VerifyEntry> entries(
          static_cast<std::size_t>(cfg_.n));
      for (std::size_t i = 0; i < echoes.size(); ++i) {
        if (echoes[i].has_value() && echoes[i]->sig.signer == 1) {
          entries[i].message = msgs[i];
          entries[i].sig = &echoes[i]->sig;
        }
      }
      authority_->verify_all(entries);
      std::map<V, int> tally;
      int bottoms = 0;
      for (std::size_t i = 0; i < echoes.size(); ++i) {
        if (entries[i].ok)
          ++tally[echoes[i]->value];
        else
          ++bottoms;
      }
      for (const auto& [v, cnt] : tally)
        if (cnt >= cfg_.n - cfg_.f) return v;
      if (bottoms >= cfg_.n - cfg_.f) return std::nullopt;
      std::this_thread::yield();
    }
  }

  // Echo maintenance (the analogue of Algorithm 3's Help): echo the first
  // validly-signed value seen in the writer's register, or adopt a value
  // echoed by f+1 processes.
  bool help_round() {
    const int j = runtime::ThisProcess::id();
    if (j < 1 || j > cfg_.n)
      throw std::logic_error("help_round requires a bound thread");
    // Version-gated wakeup (free mode): echo work only arises from a write
    // to the publish register or another echo — both bump the space epoch.
    const bool gate = space_->free_mode();
    std::uint64_t epoch = 0;
    if (gate && !epoch_gate_.changed(*space_, j, epoch)) return false;
    if (echo_[static_cast<std::size_t>(j)]->read().has_value()) {
      if (gate) epoch_gate_.record(j, epoch);
      return false;
    }

    Slot candidate = publish_->read();
    if (!(candidate.has_value() && candidate->sig.signer == 1 &&
          authority_->verify_cached(encode_value(candidate->value),
                                    candidate->sig))) {
      candidate = std::nullopt;
      std::map<V, std::pair<int, Signature>> tally;
      for (int i = 1; i <= cfg_.n; ++i) {
        const Slot e = echo_[static_cast<std::size_t>(i)]->read();
        if (e.has_value() && e->sig.signer == 1 &&
            authority_->verify_cached(encode_value(e->value), e->sig)) {
          auto& slot = tally[e->value];
          ++slot.first;
          slot.second = e->sig;
        }
      }
      for (const auto& [v, pair] : tally) {
        if (pair.first >= cfg_.f + 1) {
          candidate = SignedVal{v, pair.second};
          break;
        }
      }
    }
    if (!candidate.has_value()) {
      if (gate) epoch_gate_.record(j, epoch);
      return false;
    }
    echo_[static_cast<std::size_t>(j)]->update([&](Slot& e) {
      if (!e.has_value()) e = candidate;
    });
    if (gate) epoch_gate_.record(j, epoch);
    return true;
  }

 private:
  int count_echoes(const V& v) const {
    int count = 0;
    for (int i = 1; i <= cfg_.n; ++i) {
      const Slot e = echo_[static_cast<std::size_t>(i)]->read();
      if (e.has_value() && e->value == v) ++count;
    }
    return count;
  }

  registers::Space* space_;
  const SignatureAuthority* authority_;
  Config cfg_;
  registers::Swmr<Slot>* publish_ = nullptr;
  std::vector<registers::Swmr<Slot>*> echo_;
  core::detail::SpaceEpochGate epoch_gate_;
};

}  // namespace swsig::crypto
