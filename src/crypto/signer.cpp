#include "crypto/signer.hpp"

#include <cassert>
#include <stdexcept>

#include "util/rng.hpp"

namespace swsig::crypto {

SignatureAuthority::SignatureAuthority(Options options)
    : options_(options) {
  if (options_.n < 1) throw std::invalid_argument("need n >= 1");
  util::Rng rng(options_.seed ^ 0x51677ea7u);  // "SIGAUTH"-ish salt
  keys_.resize(static_cast<std::size_t>(options_.n) + 1);
  schedules_.resize(static_cast<std::size_t>(options_.n) + 1);
  for (int pid = 1; pid <= options_.n; ++pid) {
    std::string key(32, '\0');
    for (int i = 0; i < 4; ++i) {
      const std::uint64_t word = rng();
      for (int b = 0; b < 8; ++b)
        key[static_cast<std::size_t>(8 * i + b)] =
            static_cast<char>(word >> (8 * b));
    }
    schedules_[static_cast<std::size_t>(pid)] = HmacSchedule(key);
    keys_[static_cast<std::size_t>(pid)] = std::move(key);
  }
}

Digest SignatureAuthority::tag(runtime::ProcessId signer,
                               std::string_view message) const {
  const HmacSchedule& sched = schedules_[static_cast<std::size_t>(signer)];
  Digest d = hmac_sha256(sched, message);
  if (options_.mode == Mode::kSlowPk) {
    for (int i = 1; i < options_.pk_iterations; ++i) {
      d = hmac_sha256(sched,
                      std::string_view(reinterpret_cast<const char*>(d.data()),
                                       d.size()));
    }
  }
  return d;
}

Signature SignatureAuthority::sign(runtime::ProcessId signer,
                                   std::string_view message) const {
  if (signer < 1 || signer > options_.n)
    throw std::invalid_argument("unknown signer p" + std::to_string(signer));
  if (runtime::ThisProcess::id() != signer)
    throw ForgeryAttempt("p" + std::to_string(runtime::ThisProcess::id()) +
                         " attempted to sign as p" + std::to_string(signer));
  return Signature{signer, tag(signer, message)};
}

bool SignatureAuthority::verify(std::string_view message,
                                const Signature& sig) const {
  if (sig.signer < 1 || sig.signer > options_.n) return false;
  return tag(sig.signer, message) == sig.tag;
}

bool SignatureAuthority::verify_with_digest(std::string_view message,
                                            const Digest& message_digest,
                                            const Signature& sig) const {
  // Contract (see signer.hpp): message_digest MUST equal
  // Sha256::hash(message). The cache key is built from the digest while
  // the fallback HMAC runs over the message bytes, so a mismatched pair
  // would record a verdict under a key that later false-hits for
  // whichever message actually owns that digest.
  assert(message_digest == Sha256::hash(message));
  if (sig.signer < 1 || sig.signer > options_.n) return false;
  const VerifiedKey key =
      VerifiedKey::make(sig.signer, message_digest, sig.tag);
  if (cache_.contains(key)) return true;
  if (tag(sig.signer, message) != sig.tag) return false;  // never cached
  cache_.insert(key);
  return true;
}

bool SignatureAuthority::verify_cached(std::string_view message,
                                       const Signature& sig) const {
  if (sig.signer < 1 || sig.signer > options_.n) return false;
  return verify_with_digest(message, Sha256::hash(message), sig);
}

std::size_t SignatureAuthority::verify_all(
    std::span<VerifyEntry> entries) const {
  std::size_t good = 0;
  // Entries signing identical message bytes share one digest computation.
  // Quorum rounds hand us runs of the same statement, so a linear scan for
  // the previous occurrence is cheaper than hashing map keys.
  std::vector<const std::string_view*> seen;
  std::vector<Digest> digests;
  seen.reserve(entries.size());
  digests.reserve(entries.size());
  for (VerifyEntry& e : entries) {
    if (e.sig == nullptr) {
      e.ok = false;
      continue;
    }
    const Digest* md = nullptr;
    for (std::size_t i = 0; i < seen.size(); ++i) {
      if (*seen[i] == e.message) {
        md = &digests[i];
        break;
      }
    }
    if (md == nullptr) {
      digests.push_back(Sha256::hash(e.message));
      seen.push_back(&e.message);
      md = &digests.back();
    }
    e.ok = verify_with_digest(e.message, *md, *e.sig);
    if (e.ok) ++good;
  }
  return good;
}

}  // namespace swsig::crypto
