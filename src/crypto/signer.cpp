#include "crypto/signer.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace swsig::crypto {

SignatureAuthority::SignatureAuthority(Options options)
    : options_(options) {
  if (options_.n < 1) throw std::invalid_argument("need n >= 1");
  util::Rng rng(options_.seed ^ 0x51677ea7u);  // "SIGAUTH"-ish salt
  keys_.resize(static_cast<std::size_t>(options_.n) + 1);
  for (int pid = 1; pid <= options_.n; ++pid) {
    std::string key(32, '\0');
    for (int i = 0; i < 4; ++i) {
      const std::uint64_t word = rng();
      for (int b = 0; b < 8; ++b)
        key[static_cast<std::size_t>(8 * i + b)] =
            static_cast<char>(word >> (8 * b));
    }
    keys_[static_cast<std::size_t>(pid)] = std::move(key);
  }
}

Digest SignatureAuthority::tag(runtime::ProcessId signer,
                               std::string_view message) const {
  const std::string& key = keys_[static_cast<std::size_t>(signer)];
  Digest d = hmac_sha256(key, message);
  if (options_.mode == Mode::kSlowPk) {
    for (int i = 1; i < options_.pk_iterations; ++i) {
      d = hmac_sha256(key,
                      std::string_view(reinterpret_cast<const char*>(d.data()),
                                       d.size()));
    }
  }
  return d;
}

Signature SignatureAuthority::sign(runtime::ProcessId signer,
                                   std::string_view message) const {
  if (signer < 1 || signer > options_.n)
    throw std::invalid_argument("unknown signer p" + std::to_string(signer));
  if (runtime::ThisProcess::id() != signer)
    throw ForgeryAttempt("p" + std::to_string(runtime::ThisProcess::id()) +
                         " attempted to sign as p" + std::to_string(signer));
  return Signature{signer, tag(signer, message)};
}

bool SignatureAuthority::verify(std::string_view message,
                                const Signature& sig) const {
  if (sig.signer < 1 || sig.signer > options_.n) return false;
  return tag(sig.signer, message) == sig.tag;
}

}  // namespace swsig::crypto
