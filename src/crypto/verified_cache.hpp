// Verified-certificate memoization for the signature layer.
//
// Soundness argument (docs/ARCHITECTURE.md, design note 16, in brief): a
// signature's validity is a pure function of (signer key, message bytes,
// tag bytes) — it never becomes false later. Caching POSITIVE verdicts
// keyed by the full triple (signer, SHA-256(message), tag) is therefore
// exactly as unforgeable as re-verifying: a tampered tag or substituted
// message changes the key, misses the cache, and falls through to the real
// HMAC check. Negative verdicts are never cached (a retried verify after a
// benign race must be free to succeed, and a negative entry would let a
// slow attacker probe the cache's hash instead of the MAC).
//
//  * VerifiedCache — per-authority set of proven (signer, digest, tag)
//    triples; every SignatureAuthority::verify site that checks long-lived
//    certificates goes through it, so each witness signature costs one HMAC
//    per OS process per lifetime instead of one per protocol round.
//  * CertInterner — aggregation layer on top: an n−f-signature quorum
//    certificate, once fully verified, is interned under its certificate
//    digest and afterwards carried/checked as ONE handle. Interned handles
//    are announced to the flight recorder (kCertIntern) so trace_view.py
//    can still attribute which witnesses backed a delivery.
//
// Both structures are sharded (mutex + open hash set per shard) — they sit
// on concurrent helper/reader hot paths.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/sha256.hpp"

namespace swsig::crypto {

namespace detail {

// Key folding for the shard tables: every bit of the (signer, message
// digest, tag) triple is mixed into the stored 128-bit key, so an exact-
// match hit requires the exact triple up to a 2^-128 accidental collision.
inline std::uint64_t fold64(const Digest& d, std::size_t offset) {
  std::uint64_t w = 0;
  for (std::size_t i = 0; i < 8; ++i)
    w |= static_cast<std::uint64_t>(d[offset + i]) << (8 * i);
  return w;
}

inline std::uint64_t mix(std::uint64_t x) {  // splitmix64 finalizer
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d4a2c6d94d8927ULL;
  return x ^ (x >> 31);
}

}  // namespace detail

// Key of one proven verification: signer id, SHA-256 of the signed
// message, and the full 32-byte tag, compressed to 128 bits of mixed
// state. The two halves are independent mixes of all inputs, so an
// accidental collision needs a simultaneous 128-bit match.
struct VerifiedKey {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  static VerifiedKey make(int signer, const Digest& message_digest,
                          const Digest& tag) {
    using detail::fold64;
    using detail::mix;
    const std::uint64_t m0 = fold64(message_digest, 0) ^
                             mix(fold64(message_digest, 8));
    const std::uint64_t m1 = fold64(message_digest, 16) ^
                             mix(fold64(message_digest, 24));
    const std::uint64_t t0 = fold64(tag, 0) ^ mix(fold64(tag, 8));
    const std::uint64_t t1 = fold64(tag, 16) ^ mix(fold64(tag, 24));
    const std::uint64_t s = static_cast<std::uint64_t>(signer);
    VerifiedKey k;
    k.lo = mix(m0 ^ mix(t0 ^ s));
    k.hi = mix(m1 ^ mix(t1 + 0x517cc1b727220a95ULL * s));
    return k;
  }

  friend bool operator==(const VerifiedKey&, const VerifiedKey&) = default;
};

class VerifiedCache {
 public:
  VerifiedCache() : shards_(kShards) {}

  // True iff this exact (signer, message digest, tag) was proven before.
  bool contains(const VerifiedKey& key) const {
    const Shard& s = shard(key);
    std::scoped_lock lock(s.mu);
    const bool hit = s.entries.contains(key);
    (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
    return hit;
  }

  // Records a PROVEN verification. Callers must only insert after a real
  // verify succeeded — negatives are never inserted anywhere.
  void insert(const VerifiedKey& key) {
    Shard& s = shard(key);
    std::scoped_lock lock(s.mu);
    s.entries.insert(key);
  }

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 16;

  struct KeyHash {
    std::size_t operator()(const VerifiedKey& k) const {
      return static_cast<std::size_t>(k.lo ^ detail::mix(k.hi));
    }
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_set<VerifiedKey, KeyHash> entries;
  };

  Shard& shard(const VerifiedKey& k) {
    return shards_[static_cast<std::size_t>(k.hi) % kShards];
  }
  const Shard& shard(const VerifiedKey& k) const {
    return shards_[static_cast<std::size_t>(k.hi) % kShards];
  }

  mutable std::vector<Shard> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

// Interning table for fully-verified aggregate certificates. A certificate
// digest must commit to the certified statement AND every (signer, tag)
// pair it aggregates (see SignedReliableBroadcast::cert_digest). find()
// returning a handle means some thread of this OS process completed the
// full n−f signature check for that exact digest earlier.
class CertInterner {
 public:
  CertInterner() : shards_(kShards) {}

  std::optional<std::uint64_t> find(const Digest& cert_digest) const {
    const std::uint64_t key = fold(cert_digest);
    const Shard& s = shard(key);
    std::scoped_lock lock(s.mu);
    const auto it = s.handles.find(key);
    if (it == s.handles.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  // Interns a verified certificate digest; returns its (stable) handle.
  std::uint64_t intern(const Digest& cert_digest) {
    const std::uint64_t key = fold(cert_digest);
    Shard& s = shard(key);
    std::scoped_lock lock(s.mu);
    const auto it = s.handles.find(key);
    if (it != s.handles.end()) return it->second;
    const std::uint64_t handle =
        next_handle_.fetch_add(1, std::memory_order_relaxed);
    s.handles.emplace(key, handle);
    return handle;
  }

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t size() const {
    return next_handle_.load(std::memory_order_relaxed) - 1;
  }

 private:
  static constexpr std::size_t kShards = 16;

  static std::uint64_t fold(const Digest& d) {
    return detail::mix(detail::fold64(d, 0) ^ detail::mix(detail::fold64(d, 8)) ^
                       detail::fold64(d, 16) ^
                       detail::mix(detail::fold64(d, 24)));
  }

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, std::uint64_t> handles;
  };

  Shard& shard(std::uint64_t key) { return shards_[key % kShards]; }
  const Shard& shard(std::uint64_t key) const { return shards_[key % kShards]; }

  mutable std::vector<Shard> shards_;
  std::atomic<std::uint64_t> next_handle_{1};
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace swsig::crypto
