// Verified-certificate memoization for the signature layer.
//
// Soundness argument (docs/ARCHITECTURE.md, design note 16, in brief): a
// signature's validity is a pure function of (signer key, message bytes,
// tag bytes) — it never becomes false later. Caching POSITIVE verdicts
// keyed by the full triple (signer, SHA-256(message), tag) is therefore
// exactly as unforgeable as re-verifying: a tampered tag or substituted
// message changes the key, misses the cache, and falls through to the real
// HMAC check. Negative verdicts are never cached (a retried verify after a
// benign race must be free to succeed, and a negative entry would let a
// slow attacker probe the cache's hash instead of the MAC).
//
//  * VerifiedCache — per-authority set of proven (signer, digest, tag)
//    triples; every SignatureAuthority::verify site that checks long-lived
//    certificates goes through it, so each witness signature costs one HMAC
//    per OS process per lifetime instead of one per protocol round.
//  * CertInterner — aggregation layer on top: an n−f-signature quorum
//    certificate, once fully verified, is interned under its certificate
//    digest and afterwards carried/checked as ONE handle. Interned handles
//    are announced to the flight recorder (kCertIntern) so trace_view.py
//    can still attribute which witnesses backed a delivery.
//
// Both tables store their FULL key bytes and compare byte-for-byte on
// lookup. The 64-bit folds below are used only for hash-bucket and shard
// placement, where an adversarially crafted collision costs one extra
// compare — never a false hit. (An earlier revision compressed the triple
// to an invertible 128-bit mix; against a Byzantine signer who controls
// the tag bytes that mix can be solved backwards to alias a cached
// verdict, so no lossy compression of attacker-controlled input may ever
// decide acceptance.)
//
// Both structures are sharded (mutex + open hash set per shard) — they sit
// on concurrent helper/reader hot paths.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "crypto/sha256.hpp"

namespace swsig::crypto {

namespace detail {

// Bucket/shard hashing helpers. These folds NEVER decide acceptance —
// both tables below key on full bytes — so their quality only affects
// bucket balance, not soundness.
inline std::uint64_t fold64(const Digest& d, std::size_t offset) {
  std::uint64_t w = 0;
  for (std::size_t i = 0; i < 8; ++i)
    w |= static_cast<std::uint64_t>(d[offset + i]) << (8 * i);
  return w;
}

inline std::uint64_t mix(std::uint64_t x) {  // splitmix64 finalizer
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d4a2c6d94d8927ULL;
  return x ^ (x >> 31);
}

}  // namespace detail

// Key of one proven verification: the signer id plus the FULL 32-byte
// SHA-256 of the signed message and the FULL 32-byte tag. Equality is
// byte-exact over the whole triple, so a cache hit is possible only for
// the identical (signer, message digest, tag) — there is no compressed
// form for an adversary to alias, no matter what tag bytes they control.
struct VerifiedKey {
  int signer = 0;
  Digest message_digest{};
  Digest tag{};

  static VerifiedKey make(int signer, const Digest& message_digest,
                          const Digest& tag) {
    return VerifiedKey{signer, message_digest, tag};
  }

  // Bucket/shard placement only — acceptance always compares full bytes.
  std::uint64_t hash64() const {
    using detail::fold64;
    using detail::mix;
    std::uint64_t h = mix(static_cast<std::uint64_t>(signer));
    for (std::size_t off = 0; off < 32; off += 8) {
      h = mix(h ^ fold64(message_digest, off));
      h = mix(h ^ fold64(tag, off));
    }
    return h;
  }

  friend bool operator==(const VerifiedKey&, const VerifiedKey&) = default;
};

class VerifiedCache {
 public:
  VerifiedCache() : shards_(kShards) {}

  // True iff this exact (signer, message digest, tag) was proven before.
  bool contains(const VerifiedKey& key) const {
    const Shard& s = shard(key);
    std::scoped_lock lock(s.mu);
    const bool hit = s.entries.contains(key);
    (hit ? hits_ : misses_).fetch_add(1, std::memory_order_relaxed);
    return hit;
  }

  // Records a PROVEN verification. Callers must only insert after a real
  // verify succeeded — negatives are never inserted anywhere.
  void insert(const VerifiedKey& key) {
    Shard& s = shard(key);
    std::scoped_lock lock(s.mu);
    s.entries.insert(key);
  }

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 16;

  struct KeyHash {
    std::size_t operator()(const VerifiedKey& k) const {
      return static_cast<std::size_t>(k.hash64());
    }
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_set<VerifiedKey, KeyHash> entries;
  };

  Shard& shard(const VerifiedKey& k) {
    return shards_[static_cast<std::size_t>(k.hash64()) % kShards];
  }
  const Shard& shard(const VerifiedKey& k) const {
    return shards_[static_cast<std::size_t>(k.hash64()) % kShards];
  }

  mutable std::vector<Shard> shards_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

// Interning table for fully-verified aggregate certificates. A certificate
// digest must commit to the certified statement AND every (signer, tag)
// pair it aggregates (see SignedReliableBroadcast::cert_digest). find()
// returning a handle means some thread of this OS process completed the
// full n−f signature check for that exact digest earlier.
class CertInterner {
 public:
  CertInterner() : shards_(kShards) {}

  std::optional<std::uint64_t> find(const Digest& cert_digest) const {
    const Shard& s = shard(cert_digest);
    std::scoped_lock lock(s.mu);
    const auto it = s.handles.find(cert_digest);
    if (it == s.handles.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  // Interns a verified certificate digest; returns its (stable) handle.
  std::uint64_t intern(const Digest& cert_digest) {
    Shard& s = shard(cert_digest);
    std::scoped_lock lock(s.mu);
    const auto it = s.handles.find(cert_digest);
    if (it != s.handles.end()) return it->second;
    const std::uint64_t handle =
        next_handle_.fetch_add(1, std::memory_order_relaxed);
    s.handles.emplace(cert_digest, handle);
    return handle;
  }

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t size() const {
    return next_handle_.load(std::memory_order_relaxed) - 1;
  }

 private:
  static constexpr std::size_t kShards = 16;

  // Shard/bucket placement only: the map is keyed on the full 32-byte
  // digest and compares it byte-for-byte, so a crafted 64-bit fold
  // collision lands two distinct certificates in one bucket — it can
  // never make an unverified certificate share a verified one's handle.
  static std::uint64_t fold(const Digest& d) {
    return detail::mix(detail::fold64(d, 0) ^ detail::mix(detail::fold64(d, 8)) ^
                       detail::fold64(d, 16) ^
                       detail::mix(detail::fold64(d, 24)));
  }

  struct DigestHash {
    std::size_t operator()(const Digest& d) const {
      return static_cast<std::size_t>(fold(d));
    }
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Digest, std::uint64_t, DigestHash> handles;
  };

  Shard& shard(const Digest& d) { return shards_[fold(d) % kShards]; }
  const Shard& shard(const Digest& d) const {
    return shards_[fold(d) % kShards];
  }

  mutable std::vector<Shard> shards_;
  std::atomic<std::uint64_t> next_handle_{1};
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
};

}  // namespace swsig::crypto
