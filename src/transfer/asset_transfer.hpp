// Asset transfer object (Cohen–Keidar [5]) on top of reliable broadcast.
//
// Each process owns one account with an initial balance. A transfer debits
// the caller's account and credits another; it is *applied* only when the
// sender's balance (computed from previously applied transfers) covers it,
// and transfers of one owner apply strictly in sequence order. The paper's
// motivation shows up directly: because the broadcast layer is
// non-equivocating (sticky registers — or signed certificates in the
// baseline), a Byzantine owner cannot publish two conflicting transfers
// with the same sequence number, which is exactly the double-spend vector.
//
// Transfer encoding into the broadcast's uint64 payload:
//   bits 48..63  recipient pid
//   bits  0..47  amount
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <vector>

#include "broadcast/reliable_broadcast.hpp"
#include "runtime/process.hpp"

namespace swsig::transfer {

struct Transfer {
  int to = 0;
  std::uint64_t amount = 0;
};

inline broadcast::Value encode_transfer(const Transfer& t) {
  return (static_cast<std::uint64_t>(t.to) << 48) |
         (t.amount & ((1ULL << 48) - 1));
}

inline Transfer decode_transfer(broadcast::Value v) {
  return Transfer{static_cast<int>(v >> 48), v & ((1ULL << 48) - 1)};
}

class AssetTransfer {
 public:
  struct Config {
    int n = 4;
    std::uint64_t initial_balance = 100;
    int max_transfers = 4;  // per account (broadcast slots)
  };

  AssetTransfer(broadcast::ReliableBroadcast& rb, Config config)
      : rb_(&rb), cfg_(config),
        next_seq_(static_cast<std::size_t>(config.n) + 1, 0) {}

  // Issues the caller's next transfer. Returns false without broadcasting
  // if the caller's current balance cannot cover it (honest clients
  // self-police; a Byzantine client skipping this check is handled at
  // application time by every correct process independently).
  bool transfer(int to, std::uint64_t amount) {
    const int self = runtime::ThisProcess::id();
    require_pid(self);
    if (to < 1 || to > cfg_.n || to == self)
      throw std::invalid_argument("bad recipient");
    if (balance_of(self) < amount) return false;
    int& seq = next_seq_[static_cast<std::size_t>(self)];
    if (seq >= cfg_.max_transfers)
      throw std::out_of_range("transfer budget exhausted");
    rb_->broadcast(seq, encode_transfer({to, amount}));
    ++seq;
    return true;
  }

  // Deterministic balance: replays every deliverable transfer, applying
  // each owner's transfers in sequence order, crediting only transfers
  // whose sender balance covers them at application time (fixpoint).
  std::uint64_t balance_of(int account) {
    require_pid(runtime::ThisProcess::id());
    if (account < 1 || account > cfg_.n)
      throw std::invalid_argument("bad account");

    // Collect deliverable transfers.
    std::vector<std::vector<std::optional<Transfer>>> txs(
        static_cast<std::size_t>(cfg_.n) + 1);
    for (int owner = 1; owner <= cfg_.n; ++owner) {
      auto& row = txs[static_cast<std::size_t>(owner)];
      row.resize(static_cast<std::size_t>(cfg_.max_transfers));
      for (int seq = 0; seq < cfg_.max_transfers; ++seq) {
        const auto v = rb_->deliver(owner, seq);
        if (v) row[static_cast<std::size_t>(seq)] = decode_transfer(*v);
        // Stop at the first gap: later transfers cannot apply before
        // earlier ones anyway (per-owner sequencing).
        if (!v) break;
      }
    }

    // Fixpoint application.
    std::vector<std::uint64_t> balance(static_cast<std::size_t>(cfg_.n) + 1,
                                       cfg_.initial_balance);
    std::vector<int> applied(static_cast<std::size_t>(cfg_.n) + 1, 0);
    bool progress = true;
    while (progress) {
      progress = false;
      for (int owner = 1; owner <= cfg_.n; ++owner) {
        const auto o = static_cast<std::size_t>(owner);
        while (applied[o] < cfg_.max_transfers) {
          const auto& slot = txs[o][static_cast<std::size_t>(applied[o])];
          if (!slot) break;  // gap: owner's later transfers wait
          const Transfer& t = *slot;
          if (t.to < 1 || t.to > cfg_.n || t.to == owner) {
            // Malformed (Byzantine) transfer: skip it permanently; it can
            // never apply, and blocks nothing (deterministic for all).
            ++applied[o];
            progress = true;
            continue;
          }
          if (balance[o] < t.amount) break;  // insufficient (for now)
          balance[o] -= t.amount;
          balance[static_cast<std::size_t>(t.to)] += t.amount;
          ++applied[o];
          progress = true;
        }
      }
    }
    return balance[static_cast<std::size_t>(account)];
  }

 private:
  void require_pid(int pid) const {
    if (pid < 1 || pid > cfg_.n)
      throw std::logic_error("asset ops need a thread bound to p1..pn");
  }

  broadcast::ReliableBroadcast* rb_;
  Config cfg_;
  std::vector<int> next_seq_;  // per-owner, owner-thread-local use
};

}  // namespace swsig::transfer
