#!/usr/bin/env python3
"""Diff two benchmark JSON dumps produced by bench binaries' --json flag.

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json [--threshold 0.15]
                           [--warn-only]

Metrics are compared by key (only keys present in both dumps). Lower is
better, except keys ending in "_per_s", "_ops" or "_speedup", which are
higher-is-better. A metric regresses when it is worse than the baseline by
more than the threshold (relative). Exit status is 1 when any metric
regressed, unless --warn-only is given (CI uses --warn-only so noisy
runners cannot turn the perf-smoke job red).
"""

import argparse
import json
import sys

HIGHER_IS_BETTER_SUFFIXES = ("_per_s", "_ops", "_speedup")


def higher_is_better(key: str) -> bool:
    return key.endswith(HIGHER_IS_BETTER_SUFFIXES)


def load_metrics(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        raise SystemExit(f"{path}: no 'metrics' object")
    return {k: float(v) for k, v in metrics.items()}


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="relative regression threshold (default 0.15)")
    ap.add_argument("--warn-only", action="store_true",
                    help="report regressions but always exit 0")
    args = ap.parse_args()

    base = load_metrics(args.baseline)
    cur = load_metrics(args.current)
    shared = sorted(set(base) & set(cur))
    if not shared:
        print("bench_compare: no shared metrics between the two dumps")
        return 0 if args.warn_only else 1

    regressions = []
    print(f"{'metric':<44} {'baseline':>12} {'current':>12} {'ratio':>8}")
    for key in shared:
        b, c = base[key], cur[key]
        ratio = c / b if b else float("inf")
        if higher_is_better(key):
            regressed = c < b * (1.0 - args.threshold)
        else:
            regressed = c > b * (1.0 + args.threshold)
        marker = "  REGRESSED" if regressed else ""
        print(f"{key:<44} {b:>12.4g} {c:>12.4g} {ratio:>8.3f}{marker}")
        if regressed:
            regressions.append(key)

    skipped = (set(base) ^ set(cur))
    if skipped:
        print(f"bench_compare: {len(skipped)} metric(s) present in only one "
              f"dump were skipped")

    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}: {', '.join(regressions)}")
        return 0 if args.warn_only else 1
    print("bench_compare: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
