#!/usr/bin/env python3
"""Diff two benchmark JSON dumps produced by bench binaries' --json flag.

Usage:
    tools/bench_compare.py BASELINE.json CURRENT.json [--threshold 0.15]
                           [--warn-only]
    tools/bench_compare.py --self-test

Metrics are compared by key (only keys present in both dumps). Lower is
better, except keys ending in "_per_s", "_ops" or "_speedup", which are
higher-is-better. A metric regresses when it is worse than the baseline by
more than the threshold (relative). Exit status is 1 when any metric
regressed, unless --warn-only is given (CI uses --warn-only so noisy
runners cannot turn the perf-smoke job red).

Malformed metrics never crash the comparison: non-numeric or non-finite
values are skipped with a warning, and a zero baseline (which would make
the relative ratio meaningless) skips that metric with a warning instead
of printing an infinite ratio. --self-test runs the built-in unit checks
(wired into CTest as bench_compare_selftest).
"""

import argparse
import json
import math
import sys

HIGHER_IS_BETTER_SUFFIXES = ("_per_s", "_ops", "_speedup")


def higher_is_better(key: str) -> bool:
    return key.endswith(HIGHER_IS_BETTER_SUFFIXES)


def load_metrics(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        raise SystemExit(f"{path}: no 'metrics' object")
    out = {}
    for key, value in metrics.items():
        try:
            fv = float(value)
        except (TypeError, ValueError):
            print(f"bench_compare: {path}: metric '{key}' is not numeric "
                  f"({value!r}); skipped")
            continue
        if not math.isfinite(fv):
            print(f"bench_compare: {path}: metric '{key}' is not finite "
                  f"({fv}); skipped")
            continue
        out[key] = fv
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="relative regression threshold (default 0.15)")
    ap.add_argument("--warn-only", action="store_true",
                    help="report regressions but always exit 0")
    args = ap.parse_args(argv)

    base = load_metrics(args.baseline)
    cur = load_metrics(args.current)
    shared = sorted(set(base) & set(cur))
    if not shared:
        print("bench_compare: no shared metrics between the two dumps")
        return 0 if args.warn_only else 1

    regressions = []
    print(f"{'metric':<44} {'baseline':>12} {'current':>12} {'ratio':>8}")
    for key in shared:
        b, c = base[key], cur[key]
        if b == 0:
            # A relative comparison against zero is meaningless (and the
            # naive ratio would be inf); warn and move on.
            print(f"{key:<44} {b:>12.4g} {c:>12.4g} {'n/a':>8}  SKIPPED "
                  f"(zero baseline)")
            continue
        ratio = c / b
        if higher_is_better(key):
            regressed = c < b * (1.0 - args.threshold)
        else:
            regressed = c > b * (1.0 + args.threshold)
        marker = "  REGRESSED" if regressed else ""
        print(f"{key:<44} {b:>12.4g} {c:>12.4g} {ratio:>8.3f}{marker}")
        if regressed:
            regressions.append(key)

    skipped = (set(base) ^ set(cur))
    if skipped:
        print(f"bench_compare: {len(skipped)} metric(s) present in only one "
              f"dump were skipped")

    if regressions:
        print(f"bench_compare: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}: {', '.join(regressions)}")
        return 0 if args.warn_only else 1
    print("bench_compare: no regressions")
    return 0


def run_self_test() -> int:
    """Unit-style checks for the comparison logic (CTest target)."""
    import os
    import tempfile

    failures = []

    def check(name: str, cond: bool) -> None:
        print(f"self-test: {'ok  ' if cond else 'FAIL'} {name}")
        if not cond:
            failures.append(name)

    with tempfile.TemporaryDirectory() as td:
        def dump(name: str, metrics: dict) -> str:
            path = os.path.join(td, name)
            with open(path, "w") as f:
                json.dump({"bench": "selftest", "metrics": metrics}, f)
            return path

        base = dump("base.json", {"a_us": 100.0, "zero_us": 0.0,
                                  "junk": "fast", "thr_ops": 100.0})

        check("non-numeric metric values are skipped by the loader",
              "junk" not in load_metrics(base))
        check("numeric-as-string values are kept by the loader",
              load_metrics(dump("str.json", {"a_us": "12.5"})) ==
              {"a_us": 12.5})

        same = dump("same.json", {"a_us": 100.0, "zero_us": 5.0,
                                  "junk": "slow", "thr_ops": 100.0})
        check("zero baseline is skipped (no inf ratio, no crash, exit 0)",
              main([base, same]) == 0)

        slower = dump("slower.json", {"a_us": 200.0, "zero_us": 5.0,
                                      "thr_ops": 100.0})
        check("lower-is-better regression exits 1",
              main([base, slower]) == 1)
        check("--warn-only exits 0 on regression",
              main([base, slower, "--warn-only"]) == 0)

        fewer_ops = dump("fewer_ops.json", {"thr_ops": 10.0})
        check("higher-is-better suffix regression exits 1",
              main([base, fewer_ops]) == 1)
        more_ops = dump("more_ops.json", {"thr_ops": 500.0})
        check("higher-is-better improvement exits 0",
              main([base, more_ops]) == 0)

        within = dump("within.json", {"a_us": 110.0, "thr_ops": 95.0})
        check("changes within the threshold exit 0",
              main([base, within]) == 0)

        disjoint = dump("disjoint.json", {"other_us": 1.0})
        check("no shared metrics exits 1", main([base, disjoint]) == 1)
        check("no shared metrics with --warn-only exits 0",
              main([base, disjoint, "--warn-only"]) == 0)

    if failures:
        print(f"self-test: {len(failures)} check(s) failed")
        return 1
    print("self-test: all checks passed")
    return 0


if __name__ == "__main__":
    if "--self-test" in sys.argv[1:]:
        sys.exit(run_self_test())
    sys.exit(main())
