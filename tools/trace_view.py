#!/usr/bin/env python3
"""Render a swsig flight-recorder trace as per-ladder timelines.

Usage:
    tools/trace_view.py TRACE.txt [--reg R] [--origin P] [--last N]
    tools/trace_view.py --self-test

The input is the machine trace written by obs::write_trace_file (the soak
harness dumps one next to its REPRO line on a wedge or SLO breach):

    # swsig-trace v1
    EV <ts_us> <pid> <kind> <tag> <reg> <origin> <sn> <aux> <peer>

Events are grouped by ladder key (reg, origin, sn) and printed as one
timeline per ladder — which process reached which Bracha rung when — with
stalled ladders (opened, never delivered) flagged and sorted first, so the
wedged write is the first thing on screen. Non-ladder events (network
plane, crash/restart/resync) are summarized per kind.

--self-test runs the built-in unit checks (wired into CTest as
trace_view_selftest, mirroring bench_compare_selftest).
"""

import argparse
import sys
import tempfile

# Ladder phase kinds, in rung order (obs/event.hpp). write_start/round_lead
# open a ladder; write_done/round_complete close it.
PHASE_ORDER = [
    "write_start",
    "round_lead",
    "echo",
    "accept",
    "amplify",
    "deliver",
    "ack",
    "write_done",
    "round_complete",
]
OPEN_KINDS = ("write_start", "round_lead")
CLOSE_KINDS = ("write_done", "round_complete")
PHASE_KINDS = set(PHASE_ORDER)
# Retry-layer events ride their op's (reg, origin, sn) key and are shown
# inside the ladder timeline, but are not protocol rungs. read_coalesced
# (a reader adopting another same-pid round's result) is keyed by round
# generation, never a rung, so it lands in the non-ladder summary.
EXTRA_KINDS = {"op_retry", "op_timeout", "write_abort", "read_coalesced"}
TIMELINE_KINDS = PHASE_KINDS | EXTRA_KINDS
# Partition events carry the cut direction in aux (soak::PartitionMode).
PARTITION_MODES = {0: "symmetric", 1: "inbound", 2: "outbound"}


def parse_trace(lines):
    """Returns (events, warnings). Each event is a dict; malformed lines
    are skipped with a warning rather than aborting — a trace dumped from
    a wedged process may legitimately end mid-line."""
    events, warnings = [], []
    for lineno, raw in enumerate(lines, 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if parts[0] != "EV":
            continue  # ladder-summary section of write_trace_file
        if len(parts) != 10:
            warnings.append(f"line {lineno}: expected 10 fields, got {len(parts)}")
            continue
        try:
            events.append(
                {
                    "ts_us": float(parts[1]),
                    "pid": int(parts[2]),
                    "kind": parts[3],
                    "tag": parts[4],
                    "reg": int(parts[5]),
                    "origin": int(parts[6]),
                    "sn": int(parts[7]),
                    "aux": int(parts[8]),
                    "peer": int(parts[9]),
                }
            )
        except ValueError as e:
            warnings.append(f"line {lineno}: {e}")
    return events, warnings


def ladders_of(events):
    """Groups timeline events by (reg, origin, sn) ladder key, preserving
    event order within each ladder. Groups holding only retry-layer events
    (e.g. read retries keyed by rid, never a rung) are dropped — they show
    up in the non-ladder summary instead."""
    ladders = {}
    for e in events:
        if e["kind"] not in TIMELINE_KINDS:
            continue
        key = (e["reg"], e["origin"], e["sn"])
        ladders.setdefault(key, []).append(e)
    return {k: v for k, v in ladders.items()
            if any(e["kind"] in PHASE_KINDS for e in v)}


def last_phase(ladder_events):
    """Highest rung any process completed, by PHASE_ORDER."""
    best = -1
    for e in ladder_events:
        if e["kind"] not in PHASE_KINDS:
            continue
        rank = PHASE_ORDER.index(e["kind"])
        best = max(best, rank)
    return PHASE_ORDER[best] if best >= 0 else "none"


def is_aborted(ladder_events):
    """The owner's recovery fence finalized this write as aborted."""
    return any(e["kind"] == "write_abort" for e in ladder_events)


def is_stalled(ladder_events):
    kinds = {e["kind"] for e in ladder_events}
    opened = bool(kinds & set(OPEN_KINDS)) or "echo" in kinds
    closed = bool(kinds & set(CLOSE_KINDS))
    delivered = "deliver" in kinds
    aborted = "write_abort" in kinds
    return opened and not closed and not delivered and not aborted


def inflight_span(ladder_events):
    """The ladder's in-flight interval: opened at its first event, settled
    at close/deliver/abort (or its last event if it never settled)."""
    ts = sorted(e["ts_us"] for e in ladder_events)
    settle = None
    for e in ladder_events:
        if e["kind"] in CLOSE_KINDS or e["kind"] in ("deliver", "write_abort"):
            settle = e["ts_us"] if settle is None else max(settle, e["ts_us"])
    return ts[0], ts[-1] if settle is None else settle


def overlap_groups(ladders):
    """Pipelined writers: per (reg, origin), the max number of ladders
    simultaneously in flight, for owners that ever had >= 2 overlapping.
    Returns {(reg, origin): (max_depth, first_sn, last_sn, ladder_count)}."""
    by_owner = {}
    for (reg, origin, sn), evs in ladders.items():
        by_owner.setdefault((reg, origin), []).append((sn, inflight_span(evs)))
    groups = {}
    for owner, spans in by_owner.items():
        if len(spans) < 2:
            continue
        points = []
        for _, (start, end) in spans:
            points.append((start, 1))
            points.append((end, -1))
        depth = cur = 0
        # Sorting (ts, delta) puts a settle before an open at the same
        # instant, so back-to-back sequential writes don't count as overlap.
        for _, delta in sorted(points):
            cur += delta
            depth = max(depth, cur)
        if depth >= 2:
            sns = sorted(sn for sn, _ in spans)
            groups[owner] = (depth, sns[0], sns[-1], len(spans))
    return groups


def render_ladder(key, ladder_events, out):
    reg, origin, sn = key
    t0 = ladder_events[0]["ts_us"]
    span = ladder_events[-1]["ts_us"] - t0
    head = f"ladder reg={reg} origin=p{origin} sn={sn}"
    if is_aborted(ladder_events):
        status = "ABORTED"
    elif is_stalled(ladder_events):
        status = "STALLED"
    else:
        status = "ok"
    print(f"{head}: last phase {last_phase(ladder_events)} "
          f"[{status}] ({len(ladder_events)} events, {span:.1f} us)", file=out)
    for e in sorted(ladder_events, key=lambda e: e["ts_us"]):
        rel = e["ts_us"] - t0
        if e["kind"] == "write_start":
            # aux = pipeline slot: how many of the owner's other writes were
            # in flight at issue (0 = a plain, unpipelined write).
            extra = f" slot={e['aux']}"
        else:
            extra = f" aux={e['aux']}" if e["aux"] else ""
        print(f"  +{rel:10.1f}us p{e['pid']:<3} {e['kind']}{extra}", file=out)


def summarize_certs(events, out):
    """Interned witness certificates: cert_intern events carry the slot
    (origin = sender, sn = seq) and the interned handle in aux, so a
    handle-only delivery seen later in a dump can be attributed back to
    the slot whose n-f witnesses were actually verified."""
    certs = {}
    for e in events:
        if e["kind"] != "cert_intern":
            continue
        entry = certs.setdefault(e["aux"], {"sender": e["origin"],
                                            "sn": e["sn"], "pids": set()})
        entry["pids"].add(e["pid"])
    if certs:
        print("interned certificates:", file=out)
        for handle in sorted(certs):
            c = certs[handle]
            pids = ",".join(f"p{p}" for p in sorted(c["pids"]))
            print(f"  handle {handle}: slot sender=p{c['sender']} "
                  f"seq={c['sn']} verified by {pids}", file=out)


def summarize_other(events, out):
    counts = {}
    for e in events:
        if e["kind"] in PHASE_KINDS or e["kind"] == "cert_intern":
            continue
        label = e["kind"]
        if e["kind"] in ("partition_cut", "partition_heal"):
            label += f".{PARTITION_MODES.get(e['aux'], '?')}"
        elif e["tag"] != "OTHER":
            label += f".{e['tag']}"
        counts[label] = counts.get(label, 0) + 1
    if counts:
        print("non-ladder events:", file=out)
        for label in sorted(counts):
            print(f"  {label}: {counts[label]}", file=out)


def render(events, out, reg=None, origin=None, last=None):
    ladders = ladders_of(events)
    keys = list(ladders)
    if reg is not None:
        keys = [k for k in keys if k[0] == reg]
    if origin is not None:
        keys = [k for k in keys if k[1] == origin]
    # Ladders needing attention first — stalled AND aborted — then grouped
    # by (reg, origin) with sns ascending, so a pipelined owner's
    # overlapping ladders read as one in-order pipeline.
    keys.sort(key=lambda k: (not (is_stalled(ladders[k]) or
                                  is_aborted(ladders[k])),
                             k[0], k[1], k[2]))
    if last is not None:
        keys = keys[:last]
    stalled = sum(1 for k in keys if is_stalled(ladders[k]))
    print(f"{len(events)} events, {len(ladders)} ladders "
          f"({stalled} stalled shown of {len(keys)} rendered)", file=out)
    groups = overlap_groups({k: ladders[k] for k in keys})
    if groups:
        print("pipelined writers (overlapping in-flight ladders):", file=out)
        for (greg, gorigin) in sorted(groups):
            depth, lo, hi, count = groups[(greg, gorigin)]
            print(f"  reg={greg} origin=p{gorigin}: max {depth} in flight "
                  f"over {count} ladders, sn {lo}..{hi}", file=out)
    for k in keys:
        render_ladder(k, ladders[k], out)
    summarize_certs(events, out)
    summarize_other(events, out)
    return stalled


# ---------------------------------------------------------------- self-test

SAMPLE = """\
# swsig-trace v1
EV 10.0 1 write_start OTHER 7 1 42 0 0
EV 11.0 1 send WRITE 7 0 42 0 2
EV 12.0 2 echo OTHER 7 1 42 0 0
EV 13.0 3 echo OTHER 7 1 42 0 0
EV 14.0 2 accept OTHER 7 1 42 0 0
EV 20.0 1 write_start OTHER 8 1 43 0 0
EV 21.0 2 echo OTHER 8 1 43 0 0
EV 22.0 2 accept OTHER 8 1 43 0 0
EV 23.0 2 deliver OTHER 8 1 43 5 0
EV 24.0 2 ack OTHER 8 1 43 0 0
EV 25.0 1 write_done OTHER 8 1 43 900 0
EV 30.0 4 crash OTHER -1 4 0 0 0
EV 40.0 1 write_start OTHER 9 1 44 0 0
EV 41.0 1 op_retry OTHER 9 1 44 40 0
EV 42.0 1 write_abort OTHER 9 1 44 0 0
EV 50.0 2 op_retry OTHER 7 1 999 80 0
EV 51.0 4 partition_cut OTHER -1 4 12 1 0
EV 52.0 4 partition_heal OTHER -1 4 12 1 0
EV 53.0 2 read_coalesced OTHER 8 1 3 43 0
EV 60.0 1 write_start OTHER 12 1 100 0 0
EV 61.0 1 write_start OTHER 12 1 101 1 0
EV 65.0 1 write_done OTHER 12 1 100 500 0
EV 66.0 1 write_done OTHER 12 1 101 500 0
EV 70.0 2 cert_intern OTHER 0 3 5 17 0
EV 71.0 4 cert_intern OTHER 0 3 5 17 0
this line is garbage
EV bad 1 echo OTHER 1 1 1 0 0
"""


def run_self_test():
    import io

    failures = []

    def check(name, cond):
        if not cond:
            failures.append(name)
        print(f"self-test: {'ok  ' if cond else 'FAIL'} {name}")

    events, warnings = parse_trace(SAMPLE.splitlines())
    check("parses well-formed events", len(events) == 25)
    # The prose garbage line is silently skipped (not an EV record); the
    # "EV bad ..." line has 10 fields but a bad float -> one warning.
    check("warns on bad numeric field", len(warnings) == 1)

    ladders = ladders_of(events)
    check("five ladders found", len(ladders) == 5)
    stalled_key = (7, 1, 42)
    done_key = (8, 1, 43)
    aborted_key = (9, 1, 44)
    check("stalled ladder detected", is_stalled(ladders[stalled_key]))
    check("completed ladder not stalled", not is_stalled(ladders[done_key]))
    check("aborted ladder detected", is_aborted(ladders[aborted_key]))
    check("aborted ladder is not counted stalled",
          not is_stalled(ladders[aborted_key]))
    check("stalled last phase is accept",
          last_phase(ladders[stalled_key]) == "accept")
    check("completed last phase is write_done",
          last_phase(ladders[done_key]) == "write_done")
    check("retry events do not advance the rung",
          last_phase(ladders[aborted_key]) == "write_start")
    check("rungless retry group is not a ladder", (7, 1, 999) not in ladders)
    check("rungless read_coalesced group is not a ladder",
          (8, 1, 3) not in ladders)

    # The pipelined owner: two ladders of reg 12 / p1 whose in-flight spans
    # ([60,65] and [61,66]) overlap; everything else is sequential.
    groups = overlap_groups(ladders)
    check("one pipelined owner found", list(groups) == [(12, 1)])
    check("pipeline depth and sn range reported",
          groups[(12, 1)] == (2, 100, 101, 2))

    out = io.StringIO()
    stalled = render(events, out)
    text = out.getvalue()
    check("render names the stalled key", "reg=7 origin=p1 sn=42" in text)
    check("render flags STALLED", "STALLED" in text)
    check("render flags ABORTED", "ABORTED" in text)
    check("render counts one stalled ladder", stalled == 1)
    check("stalled ladder renders before completed one",
          text.index("sn=42") < text.index("sn=43"))
    check("aborted ladder renders before completed one",
          text.index("sn=44") < text.index("sn=43"))
    check("retry shows inside the aborted ladder timeline",
          "op_retry aux=40" in text)
    check("write_start renders its pipeline slot", "write_start slot=1" in text)
    check("overlap summary names the pipelined owner",
          "reg=12 origin=p1: max 2 in flight over 2 ladders, sn 100..101"
          in text)
    check("pipelined sns render in order within the origin",
          text.index("sn=100") < text.index("sn=101"))
    check("non-ladder summary includes send.WRITE", "send.WRITE: 1" in text)
    check("non-ladder summary includes crash", "crash: 1" in text)
    check("non-ladder summary counts retries", "op_retry: 2" in text)
    check("non-ladder summary counts coalesced reads",
          "read_coalesced: 1" in text)
    check("partition events carry the cut direction",
          "partition_cut.inbound: 1" in text and
          "partition_heal.inbound: 1" in text)
    check("interned cert attributed to its slot and verifiers",
          "handle 17: slot sender=p3 seq=5 verified by p2,p4" in text)
    check("cert_intern excluded from the generic summary",
          "cert_intern:" not in text)

    # Filters.
    out = io.StringIO()
    render(events, out, reg=8)
    check("--reg filter keeps only reg 8",
          "sn=43" in out.getvalue() and "sn=42" not in out.getvalue())

    # Round-trip through a real file, as the CLI path does.
    with tempfile.NamedTemporaryFile("w", suffix=".txt", delete=False) as f:
        f.write(SAMPLE)
        path = f.name
    with open(path) as f:
        ev2, _ = parse_trace(f)
    check("file round-trip parses identically", len(ev2) == len(events))

    if failures:
        print(f"self-test: {len(failures)} check(s) failed")
        return 1
    print("self-test: all checks passed")
    return 0


def main():
    if "--self-test" in sys.argv[1:]:
        sys.exit(run_self_test())
    ap = argparse.ArgumentParser(
        description="Render a swsig flight-recorder trace as ladder timelines")
    ap.add_argument("trace", help="trace file from obs::write_trace_file")
    ap.add_argument("--reg", type=int, help="only this register id")
    ap.add_argument("--origin", type=int, help="only ladders led by this pid")
    ap.add_argument("--last", type=int, default=32,
                    help="render at most N ladders (default 32)")
    args = ap.parse_args()
    with open(args.trace) as f:
        events, warnings = parse_trace(f)
    for w in warnings:
        print(f"warning: {w}", file=sys.stderr)
    if not events:
        raise SystemExit(f"{args.trace}: no events")
    render(events, sys.stdout, reg=args.reg, origin=args.origin,
           last=args.last)


if __name__ == "__main__":
    main()
